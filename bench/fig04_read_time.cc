// Figure 4: average block read time per algorithm, segmented by the level
// that satisfied each read, plus the headline speedups (paper: Direct 1.05,
// Greedy 1.22, Central 1.64, N-Chance 1.73, best case ~1.77).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  const SimulationConfig config = PaperConfig(options, trace.size());
  PrintBanner("Figure 4", "average block read time by algorithm", options, trace.size());

  Simulator simulator(config, &trace);
  std::vector<SimulationResult> results;
  for (PolicyKind kind : Figure4PolicyKinds()) {
    results.push_back(MustRun(simulator, kind));
  }
  const SimulationResult& baseline = results.front();

  TableFormatter table({"Algorithm", "Avg read", "Speedup", "Local t", "Remote t", "Server t",
                        "Disk t"});
  for (const SimulationResult& result : results) {
    const double reads = static_cast<double>(result.reads);
    table.AddRow({result.policy_name, FormatDouble(result.AverageReadTime(), 0) + " us",
                  FormatDouble(result.SpeedupOver(baseline), 2) + "x",
                  FormatDouble(result.level_time_us[0] / reads, 0) + " us",
                  FormatDouble(result.level_time_us[1] / reads, 0) + " us",
                  FormatDouble(result.level_time_us[2] / reads, 0) + " us",
                  FormatDouble(result.level_time_us[3] / reads, 0) + " us"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper reported speedups: Direct 1.05x, Greedy 1.22x, Central 1.64x, "
              "N-Chance 1.73x (both coordinated algorithms within 10%% of best case)\n");
  MaybeWriteJson(options, config, results);
  return 0;
}
