// Figure 10: N-Chance response time vs. the recirculation count n.
// Paper: the big win is n = 0 -> 1; n = 1 -> 2 adds a little; beyond that,
// nothing. n = 0 is exactly Greedy Forwarding.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"
#include "src/core/nchance.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  const SimulationConfig config = PaperConfig(options, trace.size());
  PrintBanner("Figure 10", "N-Chance response vs. recirculation count n", options, trace.size());

  Simulator simulator(config, &trace);
  const SimulationResult baseline = MustRun(simulator, PolicyKind::kBaseline);

  TableFormatter table({"n", "Avg read", "Speedup", "Disk time", "Other time", "Disk rate"});
  for (int n : {0, 1, 2, 3, 4, 6, 8}) {
    NChancePolicy policy(n);
    const SimulationResult result = MustRun(simulator, policy);
    const double reads = static_cast<double>(result.reads);
    const double disk_time = result.level_time_us[3] / reads;
    table.AddRow({std::to_string(n), FormatDouble(result.AverageReadTime(), 0) + " us",
                  FormatDouble(result.SpeedupOver(baseline), 2) + "x",
                  FormatDouble(disk_time, 0) + " us",
                  FormatDouble(result.AverageReadTime() - disk_time, 0) + " us",
                  FormatPercent(result.DiskRate())});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper reported: largest improvement 0->1; small gain 1->2; flat beyond "
              "(the study uses n = 2)\n");
  return 0;
}
