// Standalone wrapper for the 'fig10_nchance_n' experiment. The experiment body lives
// in src/exp/specs/fig10_nchance_n.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig10_nchance_n`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig10_nchance_n", argc, argv);
}
