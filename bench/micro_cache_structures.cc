// Micro-benchmarks for the cache substrate data structures, using
// google-benchmark. These are engineering benchmarks (not paper figures):
// the trace-replay rate of the whole simulator is bounded by BlockCache,
// Directory, and LruMap operation costs.
#include <benchmark/benchmark.h>

#include "src/cache/block_cache.h"
#include "src/cache/directory.h"
#include "src/cache/lru_map.h"
#include "src/common/flat_hash_map.h"
#include "src/common/rng.h"
#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

void BM_FlatHashMapFind(benchmark::State& state) {
  const auto entries = static_cast<std::uint64_t>(state.range(0));
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  map.Reserve(entries);
  for (std::uint64_t k = 0; k < entries; ++k) {
    map[k * 2] = k;  // Even keys hit, odd keys miss: a 50/50 probe mix.
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(rng.NextBelow(2 * entries)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatHashMapFind)->Arg(2048)->Arg(131072);

void BM_FlatHashMapInsertErase(benchmark::State& state) {
  const auto entries = static_cast<std::uint64_t>(state.range(0));
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  map.Reserve(entries);
  std::uint64_t head = 0;
  for (; head < entries; ++head) {
    map[head] = head;
  }
  for (auto _ : state) {  // Steady-state occupancy: one insert + one erase.
    map[head] = head;
    benchmark::DoNotOptimize(map.Erase(head - entries));
    ++head;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatHashMapInsertErase)->Arg(2048)->Arg(131072);

void BM_BlockCacheHit(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  BlockCache cache(capacity);
  for (std::uint32_t i = 0; i < capacity; ++i) {
    cache.Insert(BlockId{i, 0});
  }
  Rng rng(1);
  for (auto _ : state) {
    const BlockId block{static_cast<FileId>(rng.NextBelow(capacity)), 0};
    benchmark::DoNotOptimize(cache.Touch(block));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockCacheHit)->Arg(2048)->Arg(16384);

void BM_BlockCacheMissInsertEvict(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  BlockCache cache(capacity);
  std::uint32_t next = 0;
  for (auto _ : state) {
    while (cache.Full()) {
      cache.EvictLru();
    }
    cache.Insert(BlockId{next++, 0});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockCacheMissInsertEvict)->Arg(2048)->Arg(16384);

void BM_LruMapInsert(benchmark::State& state) {
  LruMap<std::uint64_t, ClientId> map(static_cast<std::size_t>(state.range(0)));
  std::uint64_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Insert(next++, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruMapInsert)->Arg(4096)->Arg(65536);

void BM_DirectoryAddRemoveHolder(benchmark::State& state) {
  Directory directory;
  Rng rng(2);
  const std::uint64_t blocks = 100'000;
  for (auto _ : state) {
    const BlockId block{static_cast<FileId>(rng.NextBelow(blocks)), 0};
    const auto client = static_cast<ClientId>(rng.NextBelow(42));
    directory.AddHolder(block, client);
    directory.RemoveHolder(block, client);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryAddRemoveHolder);

void BM_DirectorySingletQuery(benchmark::State& state) {
  Directory directory;
  Rng rng(3);
  for (std::uint32_t i = 0; i < 100'000; ++i) {
    directory.AddHolder(BlockId{i, 0}, static_cast<ClientId>(i % 42));
    if (i % 3 == 0) {
      directory.AddHolder(BlockId{i, 0}, static_cast<ClientId>((i + 1) % 42));
    }
  }
  for (auto _ : state) {
    const BlockId block{static_cast<FileId>(rng.NextBelow(100'000)), 0};
    benchmark::DoNotOptimize(directory.IsSingletHeldBy(block, static_cast<ClientId>(0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectorySingletQuery);

// End-to-end: events per second through the full simulator, per policy.
void BM_SimulatorThroughput(benchmark::State& state) {
  static const Trace* trace = [] {
    WorkloadConfig config = SmallTestWorkloadConfig(5);
    config.num_events = 50'000;
    return new Trace(GenerateWorkload(config));
  }();
  SimulationConfig config;
  config.client_cache_blocks = 256;
  config.server_cache_blocks = 1024;
  config.warmup_events = 0;
  Simulator simulator(config, trace);
  const auto kind = static_cast<PolicyKind>(state.range(0));
  for (auto _ : state) {
    auto policy = MakePolicy(kind);
    benchmark::DoNotOptimize(simulator.Run(*policy));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace->size()));
  state.SetLabel(PolicyKindName(kind));
}
BENCHMARK(BM_SimulatorThroughput)
    ->Arg(static_cast<int>(PolicyKind::kBaseline))
    ->Arg(static_cast<int>(PolicyKind::kGreedy))
    ->Arg(static_cast<int>(PolicyKind::kCentralCoord))
    ->Arg(static_cast<int>(PolicyKind::kNChance))
    ->Arg(static_cast<int>(PolicyKind::kWeightedLru));

}  // namespace
}  // namespace coopfs

BENCHMARK_MAIN();
