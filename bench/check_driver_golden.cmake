# Golden-output check for the coopfs_bench driver (run via `cmake -P`).
#
# The driver's contract is byte-identity: its stdout for a --filter selection
# must equal the concatenated stdout of the corresponding standalone binaries
# in registration order. Runs each standalone, runs the driver once with
# FILTER, and fails if the bytes differ. Also asserts the driver wrote one
# coopfs.run/v1 manifest per selected experiment into OUT_DIR.
#
# Expected -D variables:
#   DRIVER       path to the coopfs_bench binary
#   STANDALONES  ;-list of standalone binary paths, in registration order
#   NAMES        ;-list of experiment names matching STANDALONES
#   FILTER       the --filter glob selecting exactly those experiments
#   EVENTS       --events value (kept small for test time)
#   OUT_DIR      scratch --out-dir for manifests
foreach(var DRIVER STANDALONES NAMES FILTER EVENTS OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_driver_golden.cmake: missing -D${var}")
  endif()
endforeach()

# Pass 1 — stdout byte-identity. No export flags: the "wrote metrics
# document: <path>" status line embeds the output path, so stdout is only
# comparable when both sides run with identical flags.
file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}/standalone")
set(expected "")
list(LENGTH STANDALONES num_standalones)
math(EXPR last_index "${num_standalones} - 1")
foreach(i RANGE ${last_index})
  list(GET STANDALONES ${i} binary)
  execute_process(COMMAND "${binary}" --events "${EVENTS}"
    OUTPUT_VARIABLE standalone_out RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "standalone ${binary} failed with exit code ${rc}")
  endif()
  string(APPEND expected "${standalone_out}")
endforeach()

execute_process(COMMAND "${DRIVER}" --filter "${FILTER}" --events "${EVENTS}"
    --out-dir "${OUT_DIR}"
  OUTPUT_VARIABLE driver_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "coopfs_bench --filter '${FILTER}' failed with exit code ${rc}")
endif()

if(NOT driver_out STREQUAL expected)
  string(LENGTH "${driver_out}" got_len)
  string(LENGTH "${expected}" want_len)
  file(WRITE "${OUT_DIR}/driver.stdout" "${driver_out}")
  file(WRITE "${OUT_DIR}/standalones.stdout" "${expected}")
  message(FATAL_ERROR "driver output (${got_len} bytes) differs from the "
    "concatenated standalone outputs (${want_len} bytes); see "
    "${OUT_DIR}/driver.stdout vs ${OUT_DIR}/standalones.stdout")
endif()

foreach(name IN LISTS NAMES)
  if(NOT EXISTS "${OUT_DIR}/${name}.run.json")
    message(FATAL_ERROR "driver did not write ${OUT_DIR}/${name}.run.json")
  endif()
endforeach()

# Pass 2 — coopfs.metrics/v1 byte-identity. Each standalone writes its own
# --json file; with several experiments selected the driver treats --json as
# a directory and writes <dir>/<name>.metrics.json per experiment.
foreach(i RANGE ${last_index})
  list(GET STANDALONES ${i} binary)
  list(GET NAMES ${i} name)
  execute_process(COMMAND "${binary}" --events "${EVENTS}"
      --json "${OUT_DIR}/standalone/${name}.metrics.json"
    OUTPUT_QUIET RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "standalone ${binary} --json failed with exit code ${rc}")
  endif()
endforeach()
execute_process(COMMAND "${DRIVER}" --filter "${FILTER}" --events "${EVENTS}"
    --out-dir "${OUT_DIR}" --json "${OUT_DIR}/driver"
  OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "coopfs_bench --json rerun failed with exit code ${rc}")
endif()
foreach(name IN LISTS NAMES)
  execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files
      "${OUT_DIR}/standalone/${name}.metrics.json"
      "${OUT_DIR}/driver/${name}.metrics.json"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "driver metrics export for ${name} differs from the "
      "standalone's (${OUT_DIR}/driver vs ${OUT_DIR}/standalone)")
  endif()
endforeach()
message(STATUS "driver stdout and metrics exports byte-identical to the "
  "standalones for '${FILTER}', and all manifests written")
