// coopfs_bench: the declarative experiment driver. See src/exp/driver.h for
// the command-line surface (--list, --filter, --threads, --out-dir, plus all
// BenchOptions flags) and docs/metrics_schema.md for the coopfs.run/v1
// manifest every run writes.
#include "src/exp/driver.h"

int main(int argc, char** argv) { return coopfs::DriverMain(argc, argv); }
