// Perf-regression harness: standardized throughput suite for the hot paths.
//
// Measures, with wall-clock timing (paper-metric quality is covered by the
// fig* benches; this harness tracks how fast the *simulator itself* runs):
//
//   * trace_gen            — synthetic Sprite-like workload generation
//   * flat_map_lookup      — FlatHashMap point lookups (50% hit rate) on a
//                            reserved table, the dominant operation of every
//                            replay index (items = lookups)
//   * flat_map_churn       — FlatHashMap steady-state insert+erase cycling
//                            at fixed occupancy, the eviction-path pattern
//                            (items = insert/erase pairs)
//   * replay_serial_<p>    — single-threaded trace replay per policy
//   * replay_traced_nchance — the N-Chance replay with a TraceRecorder
//                            attached (vs. replay_serial_nchance: the cost
//                            of per-event recording; disabled tracing is a
//                            null-pointer check and must stay in the noise)
//   * trace_export_jsonl   — serializing the recorded run to
//                            coopfs.events/v1 JSONL (items = bytes)
//   * replay_sampled_nchance — the N-Chance replay with a SnapshotSampler
//                            attached at the default 1-simulated-hour
//                            interval (vs. replay_serial_nchance: the state
//                            sampling tax; a disabled sampler, like disabled
//                            tracing and profiling, is a null-pointer check
//                            and must keep replay_serial_* in the noise)
//   * timeseries_export_jsonl — serializing the sampled run to
//                            coopfs.timeseries/v1 JSONL (items = bytes)
//   * replay_profiled_nchance — the N-Chance replay with the self-profiler
//                            enabled (vs. replay_serial_nchance: the
//                            per-span steady_clock cost when ON)
//   * parallel_sweep_<t>   — RunSimulationsParallel over 4 replicas of the
//                            Figure 4 job list (24 jobs) at 1, 2, 4, and 8
//                            worker threads (plus --threads when wider).
//                            The document's host_threads field records the
//                            machine's hardware concurrency so the
//                            bench_compare scaling gate can judge speedups
//                            against what was physically attainable.
//
// and writes the series to BENCH_coopfs.json ("coopfs.bench/v1", see
// docs/metrics_schema.md) so every commit leaves a comparable perf baseline.
// Where the platform allows it (Linux), the kernel's peak-RSS watermark is
// reset before each series so peak_rss_bytes attributes memory to the series
// that touched it rather than reporting the monotonic process maximum.
//
// Usage: perf_harness [--events N] [--seed S] [--out PATH] [--threads T]
//                     [--dry-run]
//
//   --events N    trace length (default 700,000, the paper's Sprite length)
//   --threads T   thread count for the widest parallel series (default:
//                 hardware concurrency)
//   --out PATH    output document (default BENCH_coopfs.json)
//   --dry-run     skip all measurement; emit a valid empty-suite document
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flat_hash_map.h"
#include "src/common/format.h"
#include "src/common/profiler.h"
#include "src/core/policy_factory.h"
#include "src/core/sweep.h"
#include "src/exp/options.h"
#include "src/exp/trace_pool.h"
#include "src/obs/bench_report.h"
#include "src/obs/snapshot_sampler.h"
#include "src/obs/trace_recorder.h"
#include "src/obs/trace_sink.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Opens a measurement window: rewinds the kernel's peak-RSS watermark (so
// the series' peak_rss_bytes covers only memory this series touches; no-op
// where unsupported) and starts the clock.
std::chrono::steady_clock::time_point StartSeries() {
  TryResetPeakRssCounter();
  return std::chrono::steady_clock::now();
}

// Paper §4.1 defaults, as in ExperimentContext::PaperConfig but without the
// observability plumbing (this harness attaches its own sinks explicitly).
SimulationConfig HarnessConfig(const BenchOptions& options, std::uint64_t trace_events) {
  SimulationConfig config;
  config.WithClientCacheMiB(16).WithServerCacheMiB(128);
  config.warmup_events = options.WarmupFor(trace_events);
  config.seed = options.seed;
  return config;
}

// Runs one policy, aborting the process with a message on failure: a harness
// replay that cannot run has no baseline to report.
SimulationResult MustRun(Simulator& simulator, PolicyKind kind) {
  const auto policy = MakePolicy(kind, PolicyParams{});
  Result<SimulationResult> result = simulator.Run(*policy);
  if (!result.ok()) {
    std::fprintf(stderr, "perf_harness: %s failed: %s\n", policy->Name().c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

BenchSeries MakeSeries(const std::string& name, std::uint64_t items, double seconds) {
  BenchSeries series;
  series.name = name;
  series.items = items;
  series.wall_seconds = seconds;
  series.ops_per_sec = seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  series.peak_rss_bytes = CurrentPeakRssBytes();
  return series;
}

// The serial-replay policies: a spread from cheapest (no cooperation) to the
// most bookkeeping-heavy paths, so per-policy regressions are attributable.
struct ReplayCase {
  const char* series_name;
  PolicyKind kind;
};
constexpr ReplayCase kReplayCases[] = {
    {"replay_serial_baseline", PolicyKind::kBaseline},
    {"replay_serial_greedy", PolicyKind::kGreedy},
    {"replay_serial_central", PolicyKind::kCentralCoord},
    {"replay_serial_nchance", PolicyKind::kNChance},
};

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::string out_path = "BENCH_coopfs.json";
  std::size_t max_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  bool dry_run = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      max_threads = std::max<std::size_t>(1, std::strtoull(argv[i + 1], nullptr, 10));
    } else if (std::strcmp(argv[i], "--dry-run") == 0) {
      dry_run = true;
    }
  }

  BenchReport report;
  report.host_threads =
      std::max<std::uint32_t>(1, std::thread::hardware_concurrency());
  if (dry_run) {
    if (Status status = report.WriteFile(out_path); !status.ok()) {
      std::fprintf(stderr, "perf_harness: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("perf_harness: dry run, wrote empty suite to %s\n", out_path.c_str());
    return 0;
  }

  std::printf("=== perf_harness: throughput suite (%llu events, seed %llu) ===\n",
              static_cast<unsigned long long>(options.events),
              static_cast<unsigned long long>(options.seed));

  // 1. Trace generation throughput (fresh, unmemoized generation).
  {
    WorkloadConfig config = SpriteWorkloadConfig(options.seed);
    config.num_events = options.events;
    const auto start = StartSeries();
    const Trace generated = GenerateWorkload(config);
    report.series.push_back(MakeSeries("trace_gen", generated.size(), SecondsSince(start)));
  }

  // 1b. Flat-map microbenches: the raw data-structure cost under the replay
  //     indexes' access patterns, so a hash-map regression is attributable
  //     separately from policy-logic changes. Both use an xorshift key
  //     stream; a checksum keeps the loops observable.
  {
    constexpr std::uint64_t kTableEntries = 1u << 17;  // Bigger than L2.
    std::uint64_t state = options.seed | 1;
    auto next = [&state] {
      state ^= state >> 12;
      state ^= state << 25;
      state ^= state >> 27;
      return state * 0x2545f4914f6cdd1dull;
    };

    // Lookup: reserved table of even keys; probe evens and odds alike for a
    // 50% hit rate (replay lookups are a hit/miss mix too).
    FlatHashMap<std::uint64_t, std::uint64_t> map;
    map.Reserve(kTableEntries);
    for (std::uint64_t k = 0; k < kTableEntries; ++k) {
      map[k * 2] = k;
    }
    const std::uint64_t lookups = options.events * 8;
    std::uint64_t checksum = 0;
    auto start = StartSeries();
    for (std::uint64_t i = 0; i < lookups; ++i) {
      const std::uint64_t* value = map.Find(next() % (2 * kTableEntries));
      checksum += value != nullptr ? *value : 1;
    }
    report.series.push_back(MakeSeries("flat_map_lookup", lookups, SecondsSince(start)));

    // Churn: hold occupancy at kTableEntries while cycling one insert + one
    // erase per step — the backward-shift erase path the LRU indexes hit on
    // every eviction.
    FlatHashMap<std::uint64_t, std::uint64_t> churn;
    churn.Reserve(kTableEntries);
    std::uint64_t head = 0;
    for (; head < kTableEntries; ++head) {
      churn[head] = head;
    }
    const std::uint64_t cycles = options.events * 4;
    start = StartSeries();
    for (std::uint64_t i = 0; i < cycles; ++i) {
      churn[head] = head;
      checksum += churn.Erase(head - kTableEntries) ? 0 : 1;
      ++head;
    }
    report.series.push_back(MakeSeries("flat_map_churn", cycles, SecondsSince(start)));
    if (checksum == ~std::uint64_t{0}) {  // Keep the loops from folding away.
      std::printf("flat_map checksum %llu\n", static_cast<unsigned long long>(checksum));
    }
  }

  // The replay series share one memoized trace snapshot; acquiring it here
  // (before timing) pays the single refcount bump up front, so the parallel
  // sweeps below see only an immutable `const Trace&`.
  const std::shared_ptr<const Trace> trace_snapshot = SpriteTraceSnapshot(options);
  const Trace& trace = *trace_snapshot;
  const SimulationConfig config = HarnessConfig(options, trace.size());

  // 2. Serial replay throughput per policy (events replayed per second).
  for (const ReplayCase& replay : kReplayCases) {
    Simulator simulator(config, &trace);
    const auto start = StartSeries();
    const SimulationResult result = MustRun(simulator, replay.kind);
    BenchSeries series = MakeSeries(replay.series_name, trace.size(), SecondsSince(start));
    (void)result;
    report.series.push_back(series);
  }

  // 3. Event-tracing overhead: the most bookkeeping-heavy replay again with
  //    a recorder attached, then the JSONL serialization of what it
  //    recorded. replay_traced_nchance vs. replay_serial_nchance is the
  //    recording tax the docs quote.
  {
    TraceRecorder recorder;
    SimulationConfig traced_config = config;
    traced_config.trace_recorder = &recorder;
    Simulator simulator(traced_config, &trace);
    const auto start = StartSeries();
    const SimulationResult result = MustRun(simulator, PolicyKind::kNChance);
    BenchSeries series = MakeSeries("replay_traced_nchance", trace.size(), SecondsSince(start));
    (void)result;
    report.series.push_back(series);

    TraceExportMetadata metadata;
    metadata.seed = options.seed;
    metadata.trace_events = options.events;
    metadata.workload = "sprite";
    const auto export_start = StartSeries();
    const std::string jsonl = EventsToJsonl(recorder.runs(), metadata);
    report.series.push_back(
        MakeSeries("trace_export_jsonl", jsonl.size(), SecondsSince(export_start)));
  }

  // 3b. State-sampling overhead: the same replay with a SnapshotSampler at
  //     the default interval, then the JSONL serialization of the samples.
  {
    SnapshotSampler sampler;
    SimulationConfig sampled_config = config;
    sampled_config.snapshot_sampler = &sampler;
    sampled_config.sample_interval = options.sample_interval;
    Simulator simulator(sampled_config, &trace);
    const auto start = StartSeries();
    const SimulationResult result = MustRun(simulator, PolicyKind::kNChance);
    BenchSeries series = MakeSeries("replay_sampled_nchance", trace.size(), SecondsSince(start));
    (void)result;
    report.series.push_back(series);

    TraceExportMetadata metadata;
    metadata.seed = options.seed;
    metadata.trace_events = options.events;
    metadata.workload = "sprite";
    const auto export_start = StartSeries();
    const std::string jsonl = TimeseriesToJsonl(sampler.runs(), metadata);
    report.series.push_back(
        MakeSeries("timeseries_export_jsonl", jsonl.size(), SecondsSince(export_start)));
  }

  // 3c. Self-profiling overhead: the same replay with the profiler ON. The
  //     profiler-OFF cost is already measured — every replay_serial_* series
  //     runs with the (disabled) spans compiled in.
  {
    const bool was_enabled = Profiler::enabled();
    Profiler::Reset();
    Profiler::Enable(true);
    Simulator simulator(config, &trace);
    const auto start = StartSeries();
    const SimulationResult result = MustRun(simulator, PolicyKind::kNChance);
    BenchSeries series =
        MakeSeries("replay_profiled_nchance", trace.size(), SecondsSince(start));
    (void)result;
    report.series.push_back(series);
    Profiler::Enable(was_enabled);
    if (!was_enabled) {
      Profiler::Reset();
    }
  }

  // 4. Parallel sweep scaling: 4 replicas of the Figure 4 job list (24
  //    jobs — enough work per width that every worker stays busy past the
  //    ramp-up) at 1, 2, 4, and 8 worker threads, plus --threads when it is
  //    wider; items = total events replayed. The scaling gate in
  //    tools/bench_compare judges these series against host_threads.
  std::vector<SimulationJob> jobs;
  constexpr std::size_t kSweepReplicas = 4;
  for (std::size_t replica = 0; replica < kSweepReplicas; ++replica) {
    for (PolicyKind kind : Figure4PolicyKinds()) {
      jobs.push_back(SimulationJob{config, kind, PolicyParams{}});
    }
  }
  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  if (max_threads > thread_counts.back()) {
    thread_counts.push_back(max_threads);
  }
  for (std::size_t threads : thread_counts) {
    const auto start = StartSeries();
    const auto results = RunSimulationsParallel(trace, jobs, threads);
    const double seconds = SecondsSince(start);
    for (const auto& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "perf_harness: parallel job failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    report.series.push_back(MakeSeries("parallel_sweep_" + std::to_string(threads) + "t",
                                       jobs.size() * trace.size(), seconds));
  }

  if (Status status = report.WriteFile(out_path); !status.ok()) {
    std::fprintf(stderr, "perf_harness: %s\n", status.ToString().c_str());
    return 1;
  }

  TableFormatter table({"Series", "Items", "Wall", "Throughput", "Peak RSS"});
  for (const BenchSeries& series : report.series) {
    table.AddRow({series.name, std::to_string(series.items),
                  FormatDouble(series.wall_seconds, 2) + " s",
                  FormatDouble(series.ops_per_sec / 1e6, 2) + " M/s",
                  FormatBytes(series.peak_rss_bytes)});
  }
  std::printf("%s\nwrote %s (%zu series)\n", table.ToString().c_str(), out_path.c_str(),
              report.series.size());
  return 0;
}

}  // namespace
}  // namespace coopfs

int main(int argc, char** argv) { return coopfs::Run(argc, argv); }
