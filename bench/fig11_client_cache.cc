// Figure 11: response time vs. per-client cache size. Paper: the
// coordinated algorithms do well once caches are reasonably large, but
// coordinating tiny caches hurts (borrowed memory costs local hits without
// cutting disk accesses); Greedy is solid across the range.
//
// The 30 (size x policy) simulations are independent; they run on a thread
// pool (src/core/sweep.h).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"
#include "src/core/sweep.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  PrintBanner("Figure 11", "response time vs. client cache size", options, trace.size());

  const std::vector<PolicyKind> kinds = {PolicyKind::kBaseline, PolicyKind::kGreedy,
                                         PolicyKind::kCentralCoord, PolicyKind::kNChance,
                                         PolicyKind::kBestCase};
  const std::vector<std::size_t> sizes = {2, 4, 8, 16, 32, 64};

  std::vector<SimulationJob> jobs;
  for (std::size_t mib : sizes) {
    for (PolicyKind kind : kinds) {
      SimulationJob job;
      job.config = PaperConfig(options, trace.size());
      job.config.WithClientCacheMiB(mib);
      job.kind = kind;
      jobs.push_back(job);
    }
  }
  const auto results = RunSimulationsParallel(trace, jobs);

  TableFormatter table({"Client cache", "Baseline", "Greedy", "Central", "N-Chance", "Best"});
  std::size_t index = 0;
  for (std::size_t mib : sizes) {
    std::vector<std::string> row{std::to_string(mib) + " MB"};
    for (std::size_t p = 0; p < kinds.size(); ++p, ++index) {
      if (!results[index].ok()) {
        std::fprintf(stderr, "run failed: %s\n", results[index].status().ToString().c_str());
        return 1;
      }
      row.push_back(FormatDouble(results[index]->AverageReadTime(), 0) + " us");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper reported: coordination pays off for reasonably large caches; tiny "
              "caches gain little (or lose) from coordination. Default: 16 MB.\n");
  return 0;
}
