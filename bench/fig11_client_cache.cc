// Standalone wrapper for the 'fig11_client_cache' experiment. The experiment body lives
// in src/exp/specs/fig11_client_cache.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig11_client_cache`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig11_client_cache", argc, argv);
}
