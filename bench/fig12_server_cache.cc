// Figure 12: response time vs. central server cache size. Paper: a bigger
// server cache helps the baseline a lot and the cooperative algorithms only
// modestly; cooperative caching stops paying once the server cache rivals
// the aggregate client memory (42 x 16 MB = 672 MB) — but such a server
// doubles the system's memory cost. Central Coordination suffers at very
// large server caches because of its reduced local hit rate.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"
#include "src/core/sweep.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  PrintBanner("Figure 12", "response time vs. server cache size", options, trace.size());

  const std::vector<PolicyKind> kinds = {PolicyKind::kBaseline, PolicyKind::kGreedy,
                                         PolicyKind::kCentralCoord, PolicyKind::kNChance,
                                         PolicyKind::kBestCase};
  const std::vector<std::size_t> sizes = {32, 64, 128, 256, 512, 768, 1024};

  std::vector<SimulationJob> jobs;
  for (std::size_t mib : sizes) {
    for (PolicyKind kind : kinds) {
      SimulationJob job;
      job.config = PaperConfig(options, trace.size());
      job.config.WithServerCacheMiB(mib);
      job.kind = kind;
      jobs.push_back(job);
    }
  }
  const auto results = RunSimulationsParallel(trace, jobs);

  TableFormatter table({"Server cache", "Baseline", "Greedy", "Central", "N-Chance", "Best"});
  std::size_t index = 0;
  for (std::size_t mib : sizes) {
    std::vector<std::string> row{std::to_string(mib) + " MB"};
    for (std::size_t p = 0; p < kinds.size(); ++p, ++index) {
      if (!results[index].ok()) {
        std::fprintf(stderr, "run failed: %s\n", results[index].status().ToString().c_str());
        return 1;
      }
      row.push_back(FormatDouble(results[index]->AverageReadTime(), 0) + " us");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper reported: baseline improves sharply with server cache; cooperative "
              "algorithms only modestly; benefit vanishes near aggregate client memory "
              "(672 MB). Default: 128 MB.\n");
  return 0;
}
