// Standalone wrapper for the 'fig12_server_cache' experiment. The experiment body lives
// in src/exp/specs/fig12_server_cache.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig12_server_cache`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig12_server_cache", argc, argv);
}
