// Figure 6: server load by algorithm, as a percentage of the baseline
// no-cooperation load, segmented by request type (§4.1 load units: small
// message 1, data transfer +2, disk transfer 2; local hits free).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  const SimulationConfig config = PaperConfig(options, trace.size());
  PrintBanner("Figure 6", "relative server load by algorithm", options, trace.size());

  Simulator simulator(config, &trace);
  std::vector<SimulationResult> results;
  for (PolicyKind kind : Figure4PolicyKinds()) {
    results.push_back(MustRun(simulator, kind));
  }
  const double base_units = static_cast<double>(results.front().server_load.TotalUnits());

  TableFormatter table({"Algorithm", "Hit Server Mem", "Hit Remote Client", "Hit Disk",
                        "Other Load", "Total"});
  for (const SimulationResult& result : results) {
    auto pct = [&](ServerLoadKind kind) {
      return FormatPercent(static_cast<double>(result.server_load.Units(kind)) / base_units, 1);
    };
    table.AddRow({result.policy_name, pct(ServerLoadKind::kHitServerMemory),
                  pct(ServerLoadKind::kHitRemoteClient), pct(ServerLoadKind::kHitDisk),
                  pct(ServerLoadKind::kOther),
                  FormatPercent(static_cast<double>(result.server_load.TotalUnits()) / base_units,
                                1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper reported: most algorithms at or below baseline load; Central somewhat "
              "above it (every local miss goes through the server)\n");
  MaybeWriteJson(options, config, results);
  return 0;
}
