// Standalone wrapper for the 'fig06_server_load' experiment. The experiment body lives
// in src/exp/specs/fig06_server_load.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig06_server_load`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig06_server_load", argc, argv);
}
