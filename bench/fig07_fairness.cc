// Standalone wrapper for the 'fig07_fairness' experiment. The experiment body lives
// in src/exp/specs/fig07_fairness.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig07_fairness`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig07_fairness", argc, argv);
}
