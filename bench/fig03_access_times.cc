// Standalone wrapper for the 'fig03_access_times' experiment. The experiment body lives
// in src/exp/specs/fig03_access_times.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig03_access_times`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig03_access_times", argc, argv);
}
