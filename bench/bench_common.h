// Shared support for the figure-reproduction bench binaries.
//
// Every fig*/sec* binary replays the same synthetic Sprite-like workload
// (the paper's traces 5-6 substitute; see DESIGN.md) under the paper's §4.1
// default configuration, varying one dimension. Common flags:
//   --events N             trace length (default 700,000 as in the paper)
//   --seed S               workload seed (default 42)
//   --json PATH            also export the runs as a coopfs.metrics/v1 document
//   --trace-events PATH    record per-event traces for every run and write a
//                          coopfs.events/v1 JSONL document (docs/observability.md)
//   --trace-perfetto PATH  also write the runs as Chrome trace_event JSON for
//                          ui.perfetto.dev
//   --timeseries PATH      sample simulation state periodically and write a
//                          coopfs.timeseries/v1 JSONL document
//   --sample-interval N    simulated microseconds between samples (default
//                          3600000000 = 1 simulated hour)
//   --profile PATH         time the simulator's own phases and write a
//                          coopfs.profile/v1 JSON document (also prints the
//                          self-time table)
// Warm-up is scaled as in the paper: the first 4/7 of the trace (400k of
// 700k accesses).
#ifndef COOPFS_BENCH_BENCH_COMMON_H_
#define COOPFS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"

namespace coopfs {

class SnapshotSampler;

struct BenchOptions {
  std::uint64_t events = 700'000;
  std::uint64_t seed = 42;
  std::uint64_t auspex_events = 5'000'000;
  std::string json_out;            // --json PATH: empty = no structured export.
  std::string trace_events_out;    // --trace-events PATH: empty = no recording.
  std::string trace_perfetto_out;  // --trace-perfetto PATH: empty = none.
  std::string timeseries_out;      // --timeseries PATH: empty = no sampling.
  std::string profile_out;         // --profile PATH: empty = profiler off.
  // --sample-interval N: simulated µs between samples (1 simulated hour; the
  // synthetic Sprite-like workload spans two simulated days).
  Micros sample_interval = 3'600'000'000;

  // Parses flags; also enables the self-profiler process-wide when --profile
  // was given, so spans cover workload generation as well as the runs.
  static BenchOptions FromArgs(int argc, char** argv);

  bool tracing_requested() const {
    return !trace_events_out.empty() || !trace_perfetto_out.empty();
  }

  bool sampling_requested() const { return !timeseries_out.empty(); }

  std::uint64_t WarmupFor(std::uint64_t num_events) const { return num_events * 4 / 7; }
};

// Generates (and memoizes within the process) the Sprite-like trace.
const Trace& SpriteTrace(const BenchOptions& options);

// Generates the Auspex-like snooped trace (237 clients; §4.4). Uses 1/5 of
// the events for warm-up, as the paper does (1M of 5M).
const Trace& AuspexTrace(const BenchOptions& options);

// Paper §4.1 defaults: 16 MB clients, 128 MB server, ATM network; warm-up
// set to the paper's fraction of `trace_events`. If --trace-events /
// --trace-perfetto was given, the process-wide recorder (below) is attached
// so every run through this config records per-event traces.
SimulationConfig PaperConfig(const BenchOptions& options, std::uint64_t trace_events);

// The process-wide TraceRecorder backing --trace-events, created on first
// use; null when tracing was not requested. Bench binaries run policies
// sequentially, so sharing one recorder across runs is safe here (each run
// becomes one TraceRun in the exported document).
TraceRecorder* BenchTraceRecorder(const BenchOptions& options);

// The process-wide SnapshotSampler backing --timeseries, created on first
// use; null when sampling was not requested. As with the recorder, bench
// binaries run policies sequentially, so each run becomes one SnapshotRun.
SnapshotSampler* BenchSnapshotSampler(const BenchOptions& options);

// If --timeseries was given, writes the sampler's runs as validated
// coopfs.timeseries/v1 JSONL, aborting on failure. Called by MaybeWriteJson;
// standalone for binaries that do not export metrics.
void MaybeWriteTimeseries(const BenchOptions& options, const std::string& workload = "sprite");

// If --profile was given, writes the process's span tree as validated
// coopfs.profile/v1 JSON and prints the self-time table. Called by
// MaybeWriteJson; standalone for binaries that do not export metrics.
void MaybeWriteProfile(const BenchOptions& options);

// If --trace-events / --trace-perfetto was given, writes the recorder's
// runs to the requested paths (validated coopfs.events/v1 JSONL and/or
// Chrome trace_event JSON), aborting on failure. `workload` labels the
// document header. Called by MaybeWriteJson; standalone for binaries that
// do not export metrics.
void MaybeWriteTraceEvents(const BenchOptions& options, const std::string& workload = "sprite");

// Runs one policy, aborting the process with a message on failure.
SimulationResult MustRun(Simulator& simulator, Policy& policy);
SimulationResult MustRun(Simulator& simulator, PolicyKind kind, const PolicyParams& params = {});

// Prints the standard bench banner: what figure this reproduces and the
// workload/configuration in play.
void PrintBanner(const std::string& figure, const std::string& what, const BenchOptions& options,
                 std::uint64_t trace_events);

// Renders one SimulationResult row ("algorithm, avg time, speedup, level
// fractions") used by several figures.
std::vector<std::string> ResultRow(const SimulationResult& result,
                                   const SimulationResult& baseline);

// If --json was given, exports `results` (with `config` embedded) as a
// validated coopfs.metrics/v1 document to that path; aborts on I/O or
// validation failure so a bad export can never pass silently.
void MaybeWriteJson(const BenchOptions& options, const SimulationConfig& config,
                    const std::vector<SimulationResult>& results);

}  // namespace coopfs

#endif  // COOPFS_BENCH_BENCH_COMMON_H_
