// §2.5: the two algorithms whose results the paper omits. Hash-Distributed
// Caching should match Centrally Coordinated hit rates with much lower
// server load; Weighted LRU should perform like N-Chance but with extra
// global-state query load.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  const SimulationConfig config = PaperConfig(options, trace.size());
  PrintBanner("Section 2.5", "Hash-Distributed and Weighted-LRU (results omitted in paper)",
              options, trace.size());

  Simulator simulator(config, &trace);
  const SimulationResult baseline = MustRun(simulator, PolicyKind::kBaseline);
  const std::vector<PolicyKind> kinds = {PolicyKind::kCentralCoord,
                                         PolicyKind::kHashDistributed, PolicyKind::kNChance,
                                         PolicyKind::kWeightedLru};

  TableFormatter table({"Algorithm", "Avg read", "Speedup", "Local", "Remote", "ServerMem",
                        "Disk", "Rel. server load"});
  for (PolicyKind kind : kinds) {
    const SimulationResult result = MustRun(simulator, kind);
    std::vector<std::string> row = ResultRow(result, baseline);
    row.push_back(FormatPercent(result.RelativeServerLoad(baseline), 0));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper reported: Hash-Distributed ~= Central hit rates with significantly lower "
              "server load; Weighted LRU ~= N-Chance response time but more complex and "
              "heavier on the server\n");
  return 0;
}
