// Standalone wrapper for the 'sec25_other_algorithms' experiment. The experiment body lives
// in src/exp/specs/sec25_other_algorithms.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter sec25_other_algorithms`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("sec25_other_algorithms", argc, argv);
}
