// Figure 5: fraction of reads satisfied at each level of the hierarchy.
// Paper: local miss rates 22% (base/direct/greedy/best), 36% (central),
// 23% (N-Chance); disk rates 15.7% (base) vs 7.6-7.7% (coordinated).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  const SimulationConfig config = PaperConfig(options, trace.size());
  PrintBanner("Figure 5", "hit level breakdown by algorithm", options, trace.size());

  Simulator simulator(config, &trace);
  TableFormatter table({"Algorithm", "Local miss", "Remote Client", "Server Mem", "Server Disk",
                        "Combined-mem miss"});
  std::vector<SimulationResult> results;
  for (PolicyKind kind : Figure4PolicyKinds()) {
    results.push_back(MustRun(simulator, kind));
    const SimulationResult& result = results.back();
    const double remote = result.LevelFraction(CacheLevel::kRemoteClient);
    const double disk = result.DiskRate();
    table.AddRow({result.policy_name, FormatPercent(result.LocalMissRate()),
                  FormatPercent(remote),
                  FormatPercent(result.LevelFraction(CacheLevel::kServerMemory)),
                  FormatPercent(disk), FormatPercent(remote + disk)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper reported: local miss 22%% (base/greedy/best) / 36%% (central) / 23%% "
              "(N-Chance); disk 15.7%% base -> 7.6-7.7%% coordinated\n");
  MaybeWriteJson(options, config, results);
  return 0;
}
