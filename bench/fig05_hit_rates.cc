// Standalone wrapper for the 'fig05_hit_rates' experiment. The experiment body lives
// in src/exp/specs/fig05_hit_rates.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig05_hit_rates`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig05_hit_rates", argc, argv);
}
