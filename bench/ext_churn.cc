// Standalone wrapper for the 'ext_churn' experiment. The experiment body lives
// in src/exp/specs/ext_churn.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter ext_churn`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("ext_churn", argc, argv);
}
