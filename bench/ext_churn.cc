// Extension ablation: workstation churn. The paper's traces cover stable
// machines; real LANs reboot. A reboot destroys the rebooting client's
// cache — including any singlets it was cooperatively holding — so the
// algorithms that depend on remote memory should degrade gracefully as the
// reboot rate rises, and the baseline (which never depends on peers)
// should degrade least.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"
#include "src/trace/workload.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::printf("=== Extension: client churn (reboots) ===\n");
  std::printf("workload: %llu events, seed %llu; reboot rate swept per client per trace\n\n",
              static_cast<unsigned long long>(options.events),
              static_cast<unsigned long long>(options.seed));

  TableFormatter table({"Reboots/client", "Baseline", "Greedy", "Central", "N-Chance",
                        "N-Chance coop loss"});
  double no_churn_nchance = 0.0;
  double no_churn_base = 0.0;
  for (const double rate : {0.0, 2.0, 8.0, 32.0, 128.0}) {
    WorkloadConfig workload = SpriteWorkloadConfig(options.seed);
    workload.num_events = options.events;
    workload.mean_reboots_per_client = rate;
    const Trace trace = GenerateWorkload(workload);
    SimulationConfig config = PaperConfig(options, trace.size());
    Simulator simulator(config, &trace);

    const SimulationResult base = MustRun(simulator, PolicyKind::kBaseline);
    const SimulationResult greedy = MustRun(simulator, PolicyKind::kGreedy);
    const SimulationResult central = MustRun(simulator, PolicyKind::kCentralCoord);
    const SimulationResult nchance = MustRun(simulator, PolicyKind::kNChance);
    if (rate == 0.0) {
      no_churn_nchance = nchance.AverageReadTime();
      no_churn_base = base.AverageReadTime();
    }
    // How much of N-Chance's cooperative advantage over the baseline
    // survives the churn?
    const double advantage =
        (base.AverageReadTime() - nchance.AverageReadTime()) /
        (no_churn_base - no_churn_nchance);
    table.AddRow({FormatDouble(rate, 0), FormatDouble(base.AverageReadTime(), 0) + " us",
                  FormatDouble(greedy.AverageReadTime(), 0) + " us",
                  FormatDouble(central.AverageReadTime(), 0) + " us",
                  FormatDouble(nchance.AverageReadTime(), 0) + " us",
                  FormatPercent(1.0 - advantage, 0)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("expected: cooperative benefit erodes with churn but degrades gracefully; the\n"
              "baseline suffers only its own clients' cold caches\n");
  return 0;
}
