// Extension ablation (paper §3 and §5): delayed writes vs. write-through.
//
// The paper asserts that, because it studies reads, "a delayed write or
// write back policy would not affect our results", and points (§5) at
// DASH-style dirty-data forwarding as the natural companion optimization.
// This bench validates the claim — read response barely moves — and
// quantifies what delayed writes buy on the write path: the fraction of
// server write traffic absorbed because blocks were overwritten or deleted
// before their 30 s flush came due.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  PrintBanner("Extension: write policy", "write-through vs. 30 s delayed writes", options,
              trace.size());

  TableFormatter table({"Algorithm / write policy", "Avg read", "Disk rate", "Writes",
                        "Flushed", "Absorbed", "Write traffic"});
  for (PolicyKind kind : {PolicyKind::kBaseline, PolicyKind::kGreedy, PolicyKind::kNChance}) {
    for (const WritePolicy write_policy :
         {WritePolicy::kWriteThrough, WritePolicy::kDelayedWrite}) {
      SimulationConfig config = PaperConfig(options, trace.size());
      config.write_policy = write_policy;
      Simulator simulator(config, &trace);
      const SimulationResult result = MustRun(simulator, kind);
      const bool delayed = write_policy == WritePolicy::kDelayedWrite;
      // Write traffic to the server: every write (through) vs. only flushes.
      const std::uint64_t traffic = delayed ? result.flushed_writes : result.writes;
      table.AddRow({result.policy_name + (delayed ? " / delayed" : " / through"),
                    FormatDouble(result.AverageReadTime(), 0) + " us",
                    FormatPercent(result.DiskRate()), std::to_string(result.writes),
                    delayed ? std::to_string(result.flushed_writes) : "-",
                    delayed ? std::to_string(result.absorbed_writes) : "-",
                    result.writes == 0
                        ? "-"
                        : FormatPercent(static_cast<double>(traffic) /
                                        static_cast<double>(result.writes))});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("expected: read columns nearly identical across write policies (paper §3); the\n"
              "delayed rows show the server write traffic saved by absorption\n");
  return 0;
}
