// Standalone wrapper for the 'ext_write_policy' experiment. The experiment body lives
// in src/exp/specs/ext_write_policy.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter ext_write_policy`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("ext_write_policy", argc, argv);
}
