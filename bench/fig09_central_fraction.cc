// Standalone wrapper for the 'fig09_central_fraction' experiment. The experiment body lives
// in src/exp/specs/fig09_central_fraction.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig09_central_fraction`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig09_central_fraction", argc, argv);
}
