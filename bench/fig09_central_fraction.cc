// Figure 9: Centrally Coordinated Caching response time vs. the fraction of
// each client cache that is centrally coordinated. Paper: a response-time
// plateau when 40-90% of client memory is coordinated; 0% = baseline.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"
#include "src/core/central_coord.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  const SimulationConfig config = PaperConfig(options, trace.size());
  PrintBanner("Figure 9", "Central Coordination response vs. coordinated fraction", options,
              trace.size());

  Simulator simulator(config, &trace);
  TableFormatter table({"Coordinated", "Avg read", "Disk time", "Other time", "Local hit"});
  for (int percent = 0; percent <= 100; percent += 10) {
    SimulationResult result;
    if (percent == 0) {
      result = MustRun(simulator, PolicyKind::kBaseline);
    } else {
      CentralCoordPolicy policy(percent / 100.0);
      result = MustRun(simulator, policy);
    }
    const double reads = static_cast<double>(result.reads);
    const double disk_time = result.level_time_us[3] / reads;
    table.AddRow({std::to_string(percent) + "%",
                  FormatDouble(result.AverageReadTime(), 0) + " us",
                  FormatDouble(disk_time, 0) + " us",
                  FormatDouble(result.AverageReadTime() - disk_time, 0) + " us",
                  FormatPercent(result.LevelFraction(CacheLevel::kLocalMemory))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper reported: response-time plateau for 40-90%% coordinated; the study "
              "uses 80%%\n");
  return 0;
}
